package mir

import (
	"math"
	"math/rand"
	"testing"
)

// fixture builds a small random public-API dataset.
func fixture(rng *rand.Rand, nP, nU, d, k int) ([][]float64, []User) {
	ps := make([][]float64, nP)
	for i := range ps {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		ps[i] = p
	}
	us := make([]User, nU)
	for i := range us {
		w := make([]float64, d)
		s := 0.0
		for j := range w {
			w[j] = rng.ExpFloat64()
			s += w[j]
		}
		for j := range w {
			w[j] /= s
		}
		us[i] = User{Weights: w, K: k}
	}
	return ps, us
}

func TestAnalyzerBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps, us := fixture(rng, 200, 20, 3, 5)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumProducts() != 200 || a.NumUsers() != 20 || a.Dim() != 3 {
		t.Errorf("metadata wrong: %d %d %d", a.NumProducts(), a.NumUsers(), a.Dim())
	}
	num, avg := a.Groups()
	if num < 1 || avg*float64(num) != 20 {
		t.Errorf("groups: %d avg %g", num, avg)
	}
	if got := a.Coverage([]float64{1, 1, 1}); got != 20 {
		t.Errorf("top corner coverage %d, want 20", got)
	}
}

func TestImpactRegionAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps, us := fixture(rng, 300, 20, 3, 5)
	reg, err := ImpactRegion(ps, us, 10)
	if err != nil {
		t.Fatal(err)
	}
	if reg.M() != 10 || reg.Dim() != 3 || reg.IsEmpty() {
		t.Fatalf("region metadata: m=%d dim=%d empty=%v", reg.M(), reg.Dim(), reg.IsEmpty())
	}
	if !reg.Contains([]float64{1, 1, 1}) {
		t.Error("top corner not contained")
	}
	if reg.Contains([]float64{0, 0, 0}) {
		t.Error("origin contained")
	}
	// Region contract on samples, via Analyzer.Coverage.
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 2000; probe++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		cov := a.Coverage(p)
		in := reg.Contains(p)
		// Skip near-threshold points.
		if cov == 10 || cov == 9 {
			continue
		}
		if (cov >= 10) != in {
			t.Fatalf("contract violated at %v: coverage %d, contains %v", p, cov, in)
		}
	}
	// Cell introspection.
	cells := reg.Cells()
	if len(cells) != reg.NumCells() || len(cells) == 0 {
		t.Fatal("cells accessor inconsistent")
	}
	for _, c := range cells[:min(5, len(cells))] {
		pt, ok := c.AnyPoint()
		if !ok {
			continue
		}
		if !c.Contains(pt) {
			t.Error("AnyPoint not contained in its cell")
		}
		if !reg.Contains(pt) {
			t.Error("cell point not in region")
		}
		if len(c.Constraints()) == 0 {
			t.Error("cell without constraints")
		}
		lo, hi := c.BoundingBox()
		for j := range pt {
			if pt[j] < lo[j]-1e-6 || pt[j] > hi[j]+1e-6 {
				t.Error("cell point outside its bounding box")
			}
		}
	}
	st := reg.Stats()
	if st.Cells == 0 || st.Iterations == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestRegionArea2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, us := fixture(rng, 200, 15, 2, 5)
	reg, err := ImpactRegion(ps, us, 8)
	if err != nil {
		t.Fatal(err)
	}
	area := reg.Area()
	if area <= 0 || area > 1 {
		t.Errorf("area = %g, want in (0,1]", area)
	}
	// Monte-Carlo cross-check.
	inside := 0
	const n = 30000
	for i := 0; i < n; i++ {
		if reg.Contains([]float64{rng.Float64(), rng.Float64()}) {
			inside++
		}
	}
	mc := float64(inside) / n
	if math.Abs(mc-area) > 0.02 {
		t.Errorf("analytic area %g vs Monte-Carlo %g", area, mc)
	}
}

func TestCostOptimalAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps, us := fixture(rng, 250, 18, 3, 5)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := a.CostOptimal(9, L2())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Coverage < 9 {
		t.Errorf("coverage %d < 9", pl.Coverage)
	}
	if pl.Region == nil || pl.Region.IsEmpty() {
		t.Error("region missing from placement")
	}
	if math.Abs(pl.Cost-L2().Eval(pl.Point)) > 1e-6 {
		t.Errorf("cost mismatch: %g vs %g", pl.Cost, L2().Eval(pl.Point))
	}

	w, err := WeightedL2([]float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CostOptimal(9, w); err != nil {
		t.Fatal(err)
	}
	if _, err := WeightedL2([]float64{1, 0, 1}); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := a.CostOptimal(0, L2()); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestImproveAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, us := fixture(rng, 150, 12, 2, 3)
	for j := range ps[0] {
		ps[0][j] *= 0.4
	}
	up, err := Improve(ps, us, 0, 0.4, L2())
	if err != nil {
		t.Fatal(err)
	}
	if up.Cost > 0.4+1e-6 {
		t.Errorf("cost %g over budget", up.Cost)
	}
	if up.Coverage < up.BaseCoverage {
		t.Error("upgrade reduced coverage")
	}
	for j := range up.Point {
		if up.Point[j] < ps[0][j]-1e-7 {
			t.Error("upgrade lowered an attribute")
		}
	}
	if _, err := Improve(ps, us, -1, 0.4, L2()); err == nil {
		t.Error("bad index accepted")
	}
}

func TestCrossbreedAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps, us := fixture(rng, 150, 12, 2, 3)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := a.BudgetedCostOptimal(1.0, L2())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Cost > 1.0+1e-6 {
		t.Errorf("budgeted CO cost %g over budget", pl.Cost)
	}
	if got := a.Coverage(pl.Point); got < pl.Coverage {
		t.Errorf("recount %d < claimed %d", got, pl.Coverage)
	}

	for j := range ps[3] {
		ps[3][j] *= 0.4
	}
	up, err := CheapestUpgrade(ps, us, 3, 6, L2())
	if err != nil {
		t.Fatal(err)
	}
	if up.Coverage < 6 {
		t.Errorf("thresholded upgrade coverage %d < 6", up.Coverage)
	}
}

func TestOptionsPlumbed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps, us := fixture(rng, 150, 15, 2, 3)
	for _, opts := range []*Options{
		nil,
		{},
		{Strategy: SmallestFirst},
		{Strategy: RoundRobin},
		{DisableFastTests: true, DisableInnerGroupProcessing: true},
		{Disable2DSpecialization: true, DisableGrouping: true},
		{DisableKernels: true},
		{DisableKernels: true, Shards: 4},
	} {
		a, err := NewAnalyzer(ps, us, opts)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := a.ImpactRegion(7)
		if err != nil {
			t.Fatal(err)
		}
		// All variants agree on sampled membership.
		for probe := 0; probe < 300; probe++ {
			p := []float64{rng.Float64(), rng.Float64()}
			cov := a.Coverage(p)
			if cov == 7 || cov == 6 {
				continue
			}
			if (cov >= 7) != reg.Contains(p) {
				t.Fatalf("opts %+v: contract violated", opts)
			}
		}
	}
}

func TestNewAnalyzerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps, us := fixture(rng, 50, 5, 2, 3)
	if _, err := NewAnalyzer(nil, us, nil); err == nil {
		t.Error("nil products accepted")
	}
	if _, err := NewAnalyzer(ps, nil, nil); err == nil {
		t.Error("nil users accepted")
	}
	us[0].K = 0
	if _, err := NewAnalyzer(ps, us, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
