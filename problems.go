package mir

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/topk"
)

// CostModel is a convex, monotone cost for creating a product at given
// attribute values (CO) or upgrading a product by an increment vector
// (IS). Build one with L2, L1, or WeightedL2.
type CostModel struct {
	c core.Cost
}

// L2 is the Euclidean cost — the paper's default model.
func L2() CostModel { return CostModel{c: core.L2Cost{}} }

// L1 is the Manhattan cost, solved by linear programming.
func L1() CostModel { return CostModel{c: core.L1Cost{}} }

// WeightedL2 is a per-attribute weighted Euclidean cost
// sqrt(sum c_i·delta_i²); factors must be strictly positive.
func WeightedL2(factors []float64) (CostModel, error) {
	for i, f := range factors {
		if f <= 0 {
			return CostModel{}, fmt.Errorf("mir: cost factor %d is %g, want > 0", i, f)
		}
	}
	return CostModel{c: core.WeightedL2Cost{C: geom.Vector(factors)}}, nil
}

// Name identifies the cost model.
func (cm CostModel) Name() string { return cm.c.Name() }

// Eval returns the cost of an attribute (increment) vector.
func (cm CostModel) Eval(delta []float64) float64 { return cm.c.Eval(geom.Vector(delta)) }

// Placement is the answer to a cost-driven placement query.
type Placement struct {
	// Point is the recommended attribute vector (for upgrades, the
	// product's new position).
	Point []float64
	// Cost is the creation or upgrade cost of Point.
	Cost float64
	// Coverage is the number of users covered at Point.
	Coverage int
	// Region, when non-nil, is the impact region computed along the way.
	Region *Region
}

// CostOptimal solves the influence-based cost optimization problem (CO):
// the cheapest position for a new product that covers at least m users.
// Unlike prior work, it supports arbitrary per-user k values.
func (a *Analyzer) CostOptimal(m int, cost CostModel) (*Placement, error) {
	res, err := core.SolveCO(a.inst, m, cost.c, a.opts)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Placement{
		Point:    res.Point,
		Cost:     res.Cost,
		Coverage: res.Coverage,
		Region:   newRegion(res.Region),
	}, nil
}

// Upgrade is the answer to an improvement-strategy query.
type Upgrade struct {
	// Point is the upgraded product position (dominating the original).
	Point []float64
	// Cost is the upgrade cost spent.
	Cost float64
	// Coverage is the number of users covered after the upgrade.
	Coverage int
	// BaseCoverage is the coverage before the upgrade.
	BaseCoverage int
}

// Improve solves the improvement-strategies problem (IS): upgrade the
// product at productIndex so that it covers the maximum number of users,
// with the upgrade cost (of the attribute increments) not exceeding
// budget. The product's competitors are re-ranked without its old
// position. Exact, unlike the greedy heuristics of prior work.
//
// Improve builds its own preprocessing over the competitor set, so it is
// a standalone function rather than an Analyzer method.
func Improve(products [][]float64, users []User, productIndex int, budget float64, cost CostModel) (*Upgrade, error) {
	ps, us := convert(products, users)
	res, err := core.SolveIS(ps, us, productIndex, budget, cost.c, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Upgrade{
		Point:        res.Point,
		Cost:         res.Cost,
		Coverage:     res.Coverage,
		BaseCoverage: res.BaseCoverage,
	}, nil
}

// BudgetedCostOptimal solves the budgeted-CO crossbreed: create a new
// product with maximum coverage, subject to the creation cost not
// exceeding budget.
func (a *Analyzer) BudgetedCostOptimal(budget float64, cost CostModel) (*Placement, error) {
	res, err := core.SolveBudgetedCO(a.inst, budget, cost.c, a.opts)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Placement{
		Point:    res.Point,
		Cost:     res.Cost,
		Coverage: res.Coverage,
	}, nil
}

// CheapestUpgrade solves the thresholded-IS crossbreed: the cheapest
// upgrade of the product at productIndex whose upgraded version covers at
// least m users.
func CheapestUpgrade(products [][]float64, users []User, productIndex, m int, cost CostModel) (*Upgrade, error) {
	ps, us := convert(products, users)
	res, err := core.SolveThresholdedIS(ps, us, productIndex, m, cost.c, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Upgrade{
		Point:    res.Point,
		Cost:     res.Cost,
		Coverage: res.Coverage,
	}, nil
}

// convert deep-copies the public-API product rows and user weights into
// the internal representation. The engine retains these vectors for the
// lifetime of an Analyzer/Monitor (and aliases them into halfspaces and
// weight projections), so aliasing the caller's slices would let a
// post-construction mutation silently corrupt every later query.
func convert(products [][]float64, users []User) ([]geom.Vector, []topk.UserPref) {
	ps := make([]geom.Vector, len(products))
	for i, p := range products {
		ps[i] = append(make(geom.Vector, 0, len(p)), p...)
	}
	us := make([]topk.UserPref, len(users))
	for i, u := range users {
		us[i] = topk.UserPref{W: append(make(geom.Vector, 0, len(u.Weights)), u.Weights...), K: u.K}
	}
	return ps, us
}

// CostOptimalFast is CostOptimal without the Region by-product: a
// best-first, cost-directed search that explores only the cheap fringe of
// the m-impact region and proves optimality from its cost lower bounds.
// Exact, and usually much faster than CostOptimal; prefer it when the
// region itself is not needed.
func (a *Analyzer) CostOptimalFast(m int, cost CostModel) (*Placement, error) {
	res, err := core.SolveCOBestFirst(a.inst, m, cost.c, a.opts)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Placement{
		Point:    res.Point,
		Cost:     res.Cost,
		Coverage: res.Coverage,
	}, nil
}
