package mir

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveMostInfluential is the reference oracle: full |P|×|U| coverage
// counting plus a total sort, exactly the semantics MostInfluential
// promises (coverage descending, index ascending on ties).
func naiveMostInfluential(a *Analyzer, ps [][]float64, n int) []Influence {
	if n > len(ps) {
		n = len(ps)
	}
	if n <= 0 {
		return nil
	}
	infl := make([]Influence, len(ps))
	for pi, p := range ps {
		infl[pi] = Influence{ProductIndex: pi, Coverage: a.Coverage(p)}
	}
	sort.Slice(infl, func(x, y int) bool {
		if infl[x].Coverage != infl[y].Coverage {
			return infl[x].Coverage > infl[y].Coverage
		}
		return infl[x].ProductIndex < infl[y].ProductIndex
	})
	return infl[:n]
}

// TestMostInfluentialDifferential pins the index-accelerated coverage
// counting byte-identical to the naive scan: same products in the same
// order with the same counts, for the indexed and index-disabled
// analyzers alike. Duplicate products force heavy coverage ties, so the
// index-order-vs-scan-order distinction would surface immediately if the
// tie-break ever leaked evaluation order.
func TestMostInfluentialDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%2
		nP := 80 + 60*trial
		ps, us := fixture(rng, nP, 14, d, 4)
		// Duplicate a block of products: identical rows score identically
		// for every user, so their coverages tie exactly.
		for i := 0; i < 10; i++ {
			dup := make([]float64, d)
			copy(dup, ps[i])
			ps = append(ps, dup)
		}
		indexed, err := NewAnalyzer(ps, us, nil)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := NewAnalyzer(ps, us, &Options{DisableTopKIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 3, len(ps), len(ps) + 5} {
			want := naiveMostInfluential(indexed, ps, n)
			for name, a := range map[string]*Analyzer{"indexed": indexed, "scan": scanned} {
				got := a.MostInfluential(n)
				if len(got) != len(want) {
					t.Fatalf("trial %d %s n=%d: %d results, want %d",
						trial, name, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d %s n=%d: result %d = %+v, want %+v",
							trial, name, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}
