package mir

import (
	"fmt"

	"mir/internal/geom"
	"mir/internal/topk"
)

// ReverseTopK returns the users covered by the product at productIndex —
// the reverse top-k query of Vlachou et al., which the preprocessed
// instance answers by a scan of the influential-halfspace thresholds: a
// user holds the product in her top-k iff the product's score meets her
// top-k-th score.
func (a *Analyzer) ReverseTopK(productIndex int) ([]int, error) {
	if productIndex < 0 || productIndex >= len(a.inst.Products) {
		return nil, fmt.Errorf("mir: product index %d out of range [0,%d)",
			productIndex, len(a.inst.Products))
	}
	p := a.inst.Products[productIndex]
	var out []int
	for ui, h := range a.inst.HS {
		if h.Contains(p) {
			out = append(out, ui)
		}
	}
	return out, nil
}

// Influence is a product together with its reverse top-k cardinality.
type Influence struct {
	ProductIndex int
	Coverage     int
}

// MostInfluential returns the n products with the largest reverse top-k
// sets (ties broken toward the smaller index) — the "most influential
// data objects" query of the reverse top-k literature, answered here from
// the mIR preprocessing.
// Coverage descends, ties break toward the smaller index.
//
// When the instance carries the layered top-k index, counting runs
// user-major through Searcher.AtLeast — each user's influential products
// are exactly {p : w·p >= t_i - Eps}, so the index enumerates them with
// superblock/block bound pruning instead of |P|·|U| dot products. The
// index threshold is slackened by an extra Eps and every hit rechecked
// with the halfspace's own Contains, so the counts (and therefore the
// returned ranking) are byte-identical to the scan fallback regardless of
// rounding differences between the two evaluation orders.
func (a *Analyzer) MostInfluential(n int) []Influence {
	if n > len(a.inst.Products) {
		n = len(a.inst.Products)
	}
	if n <= 0 {
		return nil
	}
	counts := make([]int, len(a.inst.Products))
	if ix := a.inst.TopKIndex; ix != nil {
		// A Searcher is not safe for concurrent use and Analyzer is
		// documented concurrent-safe, so allocate one per call. The
		// instance never patches its index, so index ids are product
		// indices.
		s := topk.NewSearcher(ix)
		var buf []int
		for _, h := range a.inst.HS {
			buf = s.AtLeast(h.W, h.T-2*geom.Eps, buf[:0])
			for _, pi := range buf {
				if h.Contains(a.inst.Products[pi]) {
					counts[pi]++
				}
			}
		}
	} else {
		for pi, p := range a.inst.Products {
			for _, h := range a.inst.HS {
				if h.Contains(p) {
					counts[pi]++
				}
			}
		}
	}
	idx := make([]int, len(counts))
	scores := make([]float64, len(counts))
	for i, c := range counts {
		idx[i] = i
		scores[i] = float64(c)
	}
	top := topk.SelectTop(idx, scores, n)
	out := make([]Influence, len(top))
	for i, pi := range top {
		out[i] = Influence{ProductIndex: pi, Coverage: counts[pi]}
	}
	return out
}
