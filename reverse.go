package mir

import (
	"fmt"
	"sort"
)

// ReverseTopK returns the users covered by the product at productIndex —
// the reverse top-k query of Vlachou et al., which the preprocessed
// instance answers by a scan of the influential-halfspace thresholds: a
// user holds the product in her top-k iff the product's score meets her
// top-k-th score.
func (a *Analyzer) ReverseTopK(productIndex int) ([]int, error) {
	if productIndex < 0 || productIndex >= len(a.inst.Products) {
		return nil, fmt.Errorf("mir: product index %d out of range [0,%d)",
			productIndex, len(a.inst.Products))
	}
	p := a.inst.Products[productIndex]
	var out []int
	for ui, h := range a.inst.HS {
		if h.Contains(p) {
			out = append(out, ui)
		}
	}
	return out, nil
}

// Influence is a product together with its reverse top-k cardinality.
type Influence struct {
	ProductIndex int
	Coverage     int
}

// MostInfluential returns the n products with the largest reverse top-k
// sets (ties broken toward the smaller index) — the "most influential
// data objects" query of the reverse top-k literature, answered here from
// the mIR preprocessing.
func (a *Analyzer) MostInfluential(n int) []Influence {
	if n > len(a.inst.Products) {
		n = len(a.inst.Products)
	}
	if n <= 0 {
		return nil
	}
	// Only skyband members can cover anyone beyond their own threshold
	// position; still, coverage counting is cheapest done directly.
	infl := make([]Influence, len(a.inst.Products))
	for pi, p := range a.inst.Products {
		cnt := 0
		for _, h := range a.inst.HS {
			if h.Contains(p) {
				cnt++
			}
		}
		infl[pi] = Influence{ProductIndex: pi, Coverage: cnt}
	}
	sort.Slice(infl, func(x, y int) bool {
		if infl[x].Coverage != infl[y].Coverage {
			return infl[x].Coverage > infl[y].Coverage
		}
		return infl[x].ProductIndex < infl[y].ProductIndex
	})
	return infl[:n]
}
