module mir

go 1.22
